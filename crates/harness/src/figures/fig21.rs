//! Fig. 21: context-hash size vs false positives and static footprint.

use crate::report::{pct, Table};
use crate::session::Session;
use ispy_isa::{ContextHash, HashConfig};
use ispy_sim::CountingBloom;
use ispy_trace::BlockId;
use std::collections::{HashMap, VecDeque};

/// Hash widths swept.
pub const BITS: [u8; 7] = [4, 8, 12, 16, 24, 32, 64];

/// A site's conditional contexts: predictor blocks plus the context hash at
/// each swept width.
type SiteContexts = HashMap<BlockId, Vec<(Vec<BlockId>, Vec<ContextHash>)>>;

/// Regenerates Fig. 21 on wordpress: wider context hashes reduce the Bloom
/// filter's false-positive rate (a `Cprefetch` firing although its true
/// context blocks are not in the LBR) but grow every conditional
/// instruction's immediate operand, inflating the static footprint.
pub fn run(session: &Session) -> Table {
    let Some(pos) = session.apps().iter().position(|a| a.name() == "wordpress") else {
        let mut t = Table::new(
            "fig21",
            "Context-hash width vs false positives and static footprint (wordpress)",
            &["hash bits", "false-positive rate", "static increase"],
        );
        t.note("note: wordpress absent from this session's app set; figure skipped");
        return t;
    };
    let ctx_app = &session.apps()[pos];
    let c = session.comparison(pos);
    let plan = &c.ispy_plan;

    // Per-site contexts with their per-width hashes.
    let configs: Vec<HashConfig> = BITS.iter().map(|&b| HashConfig::new(b, 2)).collect();
    let mut by_site = SiteContexts::new();
    for (site, blocks) in &plan.context_details {
        let hashes: Vec<ContextHash> = configs
            .iter()
            .map(|cfg| cfg.context_hash(blocks.iter().map(|&b| ctx_app.program.block(b).start())))
            .collect();
        by_site.entry(*site).or_default().push((blocks.clone(), hashes));
    }

    // One replay evaluates all widths: ground truth is a 32-deep window of
    // block ids; each width keeps its own counting Bloom filter.
    let depth = 32usize;
    let mut blooms: Vec<CountingBloom> =
        configs.iter().map(|cfg| CountingBloom::new(*cfg)).collect();
    let mut window: VecDeque<BlockId> = VecDeque::with_capacity(depth + 1);
    let mut present: HashMap<BlockId, u32> = HashMap::new();
    let mut fired_on_absent = vec![0u64; BITS.len()];
    let mut absent_evals = vec![0u64; BITS.len()];
    for block in ctx_app.trace.iter() {
        let addr = ctx_app.program.block(block).start();
        window.push_back(block);
        *present.entry(block).or_insert(0) += 1;
        for bloom in &mut blooms {
            bloom.insert(addr);
        }
        if window.len() > depth {
            let old = window.pop_front().expect("non-empty");
            let old_addr = ctx_app.program.block(old).start();
            if let Some(n) = present.get_mut(&old) {
                *n -= 1;
                if *n == 0 {
                    present.remove(&old);
                }
            }
            for bloom in &mut blooms {
                bloom.remove(old_addr);
            }
        }
        let Some(ctxs) = by_site.get(&block) else { continue };
        for (blocks, hashes) in ctxs {
            let truth = blocks.iter().all(|b| present.contains_key(b));
            if truth {
                continue;
            }
            for (w, hash) in hashes.iter().enumerate() {
                absent_evals[w] += 1;
                if hash.matches(blooms[w].runtime_hash()) {
                    fired_on_absent[w] += 1;
                }
            }
        }
    }

    let s = &plan.stats;
    let mut t = Table::new(
        "fig21",
        "Context-hash width vs false positives and static footprint (wordpress)",
        &["hash bits", "false-positive rate", "static increase"],
    );
    for (w, &bits) in BITS.iter().enumerate() {
        let fp = if absent_evals[w] == 0 {
            0.0
        } else {
            fired_on_absent[w] as f64 / absent_evals[w] as f64
        };
        let hash_bytes = u64::from(u32::from(bits).div_ceil(8));
        let bytes = 7 * s.ops_plain as u64
            + 8 * s.ops_coalesced as u64
            + (7 + hash_bytes) * s.ops_cond as u64
            + (8 + hash_bytes) * s.ops_cond_coalesced as u64;
        t.row(vec![
            bits.to_string(),
            pct(fp),
            pct(bytes as f64 / ctx_app.program.text_bytes() as f64),
        ]);
    }
    t.note("false-positive rate: P(Cprefetch fires | its context blocks are NOT in the LBR)");
    t.note("paper: 16 bits gives ~13% false positives at ~4.6% static increase — the design point");
    t
}
