//! Ablations beyond the paper's figures, for the design choices the paper
//! asserts without a sweep (DESIGN.md §5 "Ablations beyond the paper").

use crate::report::{pct, speedup, Table};
use crate::session::Session;
use ispy_core::{IspyConfig, Planner};
use ispy_isa::HashConfig;
use ispy_profile::{profile, SampleRate};
use ispy_sim::{InsertPriority, SimConfig};

/// Replacement-priority ablation (§III-B): the paper inserts prefetched
/// lines at *half* the highest priority to bound pollution from inaccurate
/// prefetches. Compare against MRU and LRU insertion.
///
/// The (priority × app) grid fans out across the thread pool; all cells
/// replay the cached I-SPY plan, only the simulator's insert policy varies.
pub fn replacement(session: &Session) -> Table {
    let mut t = Table::new(
        "abl-replacement",
        "Prefetched-line insertion priority (paper §III-B chooses half)",
        &["app", "mru insert", "half insert", "lru insert"],
    );
    session.comparisons();
    let napps = session.apps().len();
    const PRIOS: [InsertPriority; 3] =
        [InsertPriority::Mru, InsertPriority::Half, InsertPriority::Lru];
    let cells = ispy_parallel::par_collect(PRIOS.len() * napps, |j| {
        let (pi, i) = (j / napps, j % napps);
        let ctx = &session.apps()[i];
        let c = session.comparison(i);
        let cfg = SimConfig { prefetch_insert: PRIOS[pi], ..SimConfig::default() };
        let r = ctx.simulate_compiled(&cfg, &c.ispy_compiled);
        r.speedup_over(&c.baseline)
    });
    for (i, ctx) in session.apps().iter().enumerate() {
        let mut row = vec![ctx.name().to_string()];
        for pi in 0..PRIOS.len() {
            row.push(speedup(cells[pi * napps + i]));
        }
        t.row(row);
    }
    t.note("half-priority bounds the damage of inaccurate prefetches; LRU insertion");
    t.note("evicts prefetches before use, MRU lets bad prefetches displace demand lines");
    t
}

/// PEBS-sampling ablation: how much profile fidelity does the planner need?
/// The paper profiles in production with sampled counters; this reproduction
/// defaults to exact profiles.
///
/// The (period × app) grid fans out across the thread pool. Each cell
/// re-profiles at its sampling period and plans fresh — the session's
/// planner baseline deliberately stays unused here, since it caches scans
/// keyed to the *exact* profile and a sampled profile changes the miss set.
pub fn sampling(session: &Session) -> Table {
    let mut t = Table::new(
        "abl-sampling",
        "Profile sampling rate vs plan quality",
        &["sampling period", "mean MPKI reduction", "mean % of ideal"],
    );
    session.comparisons();
    const PERIODS: [u32; 4] = [1, 4, 16, 64];
    let napps = session.apps().len();
    let cells = ispy_parallel::par_collect(PERIODS.len() * napps, |j| {
        let (si, i) = (j / napps, j % napps);
        let ctx = &session.apps()[i];
        let c = session.comparison(i);
        let scfg = SimConfig::default();
        let prof = profile(&ctx.program, &ctx.trace, &scfg, SampleRate::every(PERIODS[si]));
        let plan = Planner::new(&ctx.program, &ctx.trace, &prof, IspyConfig::default()).plan();
        let r = ctx.simulate(&scfg, Some(&plan.injections));
        (r.mpki_reduction_vs(&c.baseline), r.fraction_of_ideal(&c.baseline, &c.ideal))
    });
    for (si, period) in PERIODS.iter().enumerate() {
        let row = &cells[si * napps..(si + 1) * napps];
        let mean =
            |f: fn(&(f64, f64)) -> f64| row.iter().map(f).sum::<f64>() / row.len().max(1) as f64;
        t.row(vec![format!("1 / {period}"), pct(mean(|c| c.0)), pct(mean(|c| c.1))]);
    }
    t.note("plans degrade gracefully with sparser miss samples, supporting the paper's");
    t.note("lightweight always-on production profiling story");
    t
}

/// Bloom-filter hash-count ablation: one hash function (FNV-1) vs two
/// (FNV-1 + MurmurHash3, the paper's design).
///
/// The (k × app) grid fans out across the thread pool; each cell plans with
/// its hash config (reusing the app's baseline scans) and simulates with
/// the matching simulator hash.
pub fn bloom_k(session: &Session) -> Table {
    let mut t = Table::new(
        "abl-bloomk",
        "Context-hash functions per block: k=1 (FNV) vs k=2 (FNV+Murmur)",
        &["app", "k=1 speedup", "k=2 speedup", "k=1 suppression", "k=2 suppression"],
    );
    session.comparisons();
    const KS: [u8; 2] = [1, 2];
    let napps = session.apps().len();
    let cells = ispy_parallel::par_collect(KS.len() * napps, |j| {
        let (ki, i) = (j / napps, j % napps);
        let ctx = &session.apps()[i];
        let c = session.comparison(i);
        let hash = HashConfig::new(16, KS[ki]);
        let plan = Planner::new(
            &ctx.program,
            &ctx.trace,
            &ctx.profile,
            IspyConfig::default().with_hash(hash),
        )
        .plan_with_baseline(session.planner_baseline(i));
        let r = ctx.simulate(&SimConfig::default().with_hash(hash), Some(&plan.injections));
        let sup = if r.pf_ops_executed == 0 {
            0.0
        } else {
            r.pf_ops_suppressed as f64 / r.pf_ops_executed as f64
        };
        (r.speedup_over(&c.baseline), sup)
    });
    for (i, ctx) in session.apps().iter().enumerate() {
        let (k1, k2) = (&cells[i], &cells[napps + i]);
        t.row(vec![ctx.name().to_string(), speedup(k1.0), speedup(k2.0), pct(k1.1), pct(k2.1)]);
    }
    t.note("k=2 sets more bits per LBR entry (saturating the 16-bit filter faster, less");
    t.note("suppression); k=1 discriminates better at the same width");
    t
}
