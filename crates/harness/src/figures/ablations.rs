//! Ablations beyond the paper's figures, for the design choices the paper
//! asserts without a sweep (DESIGN.md §5 "Ablations beyond the paper").

use crate::report::{pct, speedup, Table};
use crate::session::Session;
use ispy_core::{IspyConfig, Planner};
use ispy_isa::HashConfig;
use ispy_profile::{profile, SampleRate};
use ispy_sim::{InsertPriority, SimConfig};

/// Replacement-priority ablation (§III-B): the paper inserts prefetched
/// lines at *half* the highest priority to bound pollution from inaccurate
/// prefetches. Compare against MRU and LRU insertion.
pub fn replacement(session: &Session) -> Table {
    let mut t = Table::new(
        "abl-replacement",
        "Prefetched-line insertion priority (paper §III-B chooses half)",
        &["app", "mru insert", "half insert", "lru insert"],
    );
    for (i, ctx) in session.apps().iter().enumerate() {
        let c = session.comparison(i);
        let mut cells = vec![ctx.name().to_string()];
        for prio in [InsertPriority::Mru, InsertPriority::Half, InsertPriority::Lru] {
            let cfg = SimConfig { prefetch_insert: prio, ..SimConfig::default() };
            let r = ctx.simulate(&cfg, Some(&c.ispy_plan.injections));
            cells.push(speedup(r.speedup_over(&c.baseline)));
        }
        t.row(cells);
    }
    t.note("half-priority bounds the damage of inaccurate prefetches; LRU insertion");
    t.note("evicts prefetches before use, MRU lets bad prefetches displace demand lines");
    t
}

/// PEBS-sampling ablation: how much profile fidelity does the planner need?
/// The paper profiles in production with sampled counters; this reproduction
/// defaults to exact profiles.
pub fn sampling(session: &Session) -> Table {
    let mut t = Table::new(
        "abl-sampling",
        "Profile sampling rate vs plan quality",
        &["sampling period", "mean MPKI reduction", "mean % of ideal"],
    );
    let scfg = SimConfig::default();
    for period in [1u32, 4, 16, 64] {
        let mut reds = Vec::new();
        let mut fracs = Vec::new();
        for (i, ctx) in session.apps().iter().enumerate() {
            let c = session.comparison(i);
            let prof = profile(&ctx.program, &ctx.trace, &scfg, SampleRate::every(period));
            let plan =
                Planner::new(&ctx.program, &ctx.trace, &prof, IspyConfig::default()).plan();
            let r = ctx.simulate(&scfg, Some(&plan.injections));
            reds.push(r.mpki_reduction_vs(&c.baseline));
            fracs.push(r.fraction_of_ideal(&c.baseline, &c.ideal));
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        t.row(vec![format!("1 / {period}"), pct(mean(&reds)), pct(mean(&fracs))]);
    }
    t.note("plans degrade gracefully with sparser miss samples, supporting the paper's");
    t.note("lightweight always-on production profiling story");
    t
}

/// Bloom-filter hash-count ablation: one hash function (FNV-1) vs two
/// (FNV-1 + MurmurHash3, the paper's design).
pub fn bloom_k(session: &Session) -> Table {
    let mut t = Table::new(
        "abl-bloomk",
        "Context-hash functions per block: k=1 (FNV) vs k=2 (FNV+Murmur)",
        &["app", "k=1 speedup", "k=2 speedup", "k=1 suppression", "k=2 suppression"],
    );
    let scfg = SimConfig::default();
    for (i, ctx) in session.apps().iter().enumerate() {
        let c = session.comparison(i);
        let mut cells = vec![ctx.name().to_string()];
        let mut sups = Vec::new();
        for k in [1u8, 2] {
            let hash = HashConfig::new(16, k);
            let plan = Planner::new(
                &ctx.program,
                &ctx.trace,
                &ctx.profile,
                IspyConfig::default().with_hash(hash),
            )
            .plan();
            let sim_cfg = SimConfig::default().with_hash(hash);
            let _ = scfg;
            let r = ctx.simulate(&sim_cfg, Some(&plan.injections));
            cells.push(speedup(r.speedup_over(&c.baseline)));
            sups.push(if r.pf_ops_executed == 0 {
                0.0
            } else {
                r.pf_ops_suppressed as f64 / r.pf_ops_executed as f64
            });
        }
        cells.push(pct(sups[0]));
        cells.push(pct(sups[1]));
        t.row(cells);
    }
    t.note("k=2 sets more bits per LBR entry (saturating the 16-bit filter faster, less");
    t.note("suppression); k=1 discriminates better at the same width");
    t
}
