//! Fig. 13: prefetch accuracy.

use crate::report::{pct, Table};
use crate::session::Session;

/// Regenerates Fig. 13: fraction of issued prefetch lines that were used
/// before eviction, AsmDB vs I-SPY.
pub fn run(session: &Session) -> Table {
    let mut t = Table::new("fig13", "Prefetch accuracy", &["app", "asmdb", "i-spy", "delta"]);
    let mut deltas = Vec::new();
    session.comparisons(); // prime the cache one app per pool thread
    for (i, ctx) in session.apps().iter().enumerate() {
        let c = session.comparison(i);
        let d = c.ispy.accuracy() - c.asmdb.accuracy();
        deltas.push(d);
        t.row(vec![
            ctx.name().to_string(),
            pct(c.asmdb.accuracy()),
            pct(c.ispy.accuracy()),
            pct(d),
        ]);
    }
    let mean = deltas.iter().sum::<f64>() / deltas.len().max(1) as f64;
    t.note(format!("measured: mean accuracy delta {}", pct(mean)));
    t.note("paper: I-SPY averages 80.3% accuracy, 8.2% above AsmDB");
    t
}
