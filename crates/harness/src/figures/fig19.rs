//! Fig. 19: sensitivity to the coalescing bitmask size.

use crate::report::{pct, Table};
use crate::session::Session;
use ispy_core::IspyConfig;

/// Bitmask widths swept (paper: 1 to 64 bits).
pub const BITS: [u8; 7] = [1, 2, 4, 8, 16, 32, 64];

/// Regenerates Fig. 19: mean fraction of ideal achieved by prefetch
/// coalescing as the bitmask grows.
///
/// The (width × app) grid fans out across the thread pool; rows stay in
/// sweep order. All widths share each app's cached window candidates (the
/// mask width only changes how lines pack into ops).
pub fn run(session: &Session) -> Table {
    let mut t = Table::new(
        "fig19",
        "Prefetch coalescing vs bitmask size",
        &["mask bits", "mean % of ideal", "injected ops"],
    );
    session.comparisons();
    let napps = session.apps().len();
    let cells = ispy_parallel::par_collect(BITS.len() * napps, |j| {
        let (si, i) = (j / napps, j % napps);
        let c = session.comparison(i);
        let (plan, r) =
            session.run_ispy_variant(i, IspyConfig::coalescing_only().with_coalesce_bits(BITS[si]));
        (r.fraction_of_ideal(&c.baseline, &c.ideal), plan.stats.ops_total())
    });
    for (si, bits) in BITS.iter().enumerate() {
        let row = &cells[si * napps..(si + 1) * napps];
        let mean = row.iter().map(|(f, _)| f).sum::<f64>() / row.len().max(1) as f64;
        let ops: usize = row.iter().map(|(_, o)| o).sum();
        t.row(vec![bits.to_string(), pct(mean), ops.to_string()]);
    }
    t.note("paper: larger masks help slightly (fewer spurious evictions) but cost hardware;");
    t.note("paper: 8 bits is the chosen complexity/performance trade-off");
    t
}
