//! Fig. 19: sensitivity to the coalescing bitmask size.

use crate::report::{pct, Table};
use crate::session::Session;
use ispy_core::IspyConfig;

/// Bitmask widths swept (paper: 1 to 64 bits).
pub const BITS: [u8; 7] = [1, 2, 4, 8, 16, 32, 64];

/// Regenerates Fig. 19: mean fraction of ideal achieved by prefetch
/// coalescing as the bitmask grows.
pub fn run(session: &Session) -> Table {
    let mut t = Table::new(
        "fig19",
        "Prefetch coalescing vs bitmask size",
        &["mask bits", "mean % of ideal", "injected ops"],
    );
    for bits in BITS {
        let mut fracs = Vec::new();
        let mut ops = 0usize;
        for i in 0..session.apps().len() {
            let c = session.comparison(i);
            let (plan, r) =
                session.run_ispy_variant(i, IspyConfig::coalescing_only().with_coalesce_bits(bits));
            fracs.push(r.fraction_of_ideal(&c.baseline, &c.ideal));
            ops += plan.stats.ops_total();
        }
        let mean = fracs.iter().sum::<f64>() / fracs.len().max(1) as f64;
        t.row(vec![bits.to_string(), pct(mean), ops.to_string()]);
    }
    t.note("paper: larger masks help slightly (fewer spurious evictions) but cost hardware;");
    t.note("paper: 8 bits is the chosen complexity/performance trade-off");
    t
}
