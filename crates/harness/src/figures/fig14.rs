//! Fig. 14: static code-footprint increase.

use crate::report::{pct, Table};
use crate::session::Session;

/// Regenerates Fig. 14: bytes of injected prefetch instructions relative to
/// the original text segment.
pub fn run(session: &Session) -> Table {
    let mut t = Table::new(
        "fig14",
        "Static code-footprint increase",
        &["app", "asmdb", "i-spy", "i-spy ops (C/L/CL/plain)"],
    );
    session.comparisons(); // prime the cache one app per pool thread
    for (i, ctx) in session.apps().iter().enumerate() {
        let c = session.comparison(i);
        let s = &c.ispy_plan.stats;
        t.row(vec![
            ctx.name().to_string(),
            pct(c.asmdb_plan.stats.static_increase),
            pct(s.static_increase),
            format!("{}/{}/{}/{}", s.ops_cond, s.ops_coalesced, s.ops_cond_coalesced, s.ops_plain),
        ]);
    }
    t.note("paper: I-SPY adds 5.1%-9.5% static footprint vs AsmDB's 7.6%-15.1%,");
    t.note("paper: because coalescing folds multiple prefetches into single instructions");
    t
}
