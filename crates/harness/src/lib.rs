//! Experiment harness: regenerates every table and figure of the I-SPY
//! paper's evaluation (§V–§VI) against the synthetic workload substrate.
//!
//! The entry point is a [`Session`]: it prepares the nine applications at a
//! chosen [`Scale`], caches the expensive per-app artifacts (program, trace,
//! profile, baseline/ideal/AsmDB/I-SPY runs), and each figure driver in
//! [`figures`] renders one paper table/figure as a [`report::Table`].
//!
//! ```no_run
//! use ispy_harness::{figures, Scale, Session};
//!
//! let session = Session::new(Scale::quick());
//! let table = figures::fig10::run(&session); // headline speedup figure
//! println!("{table}");
//! ```
//!
//! The `repro` binary wraps this: `repro fig10`, `repro all --quick`,
//! `repro list`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod enginebench;
pub mod explain;
pub mod figures;
pub mod json;
pub mod metrics;
pub mod report;
pub mod rss;
pub mod session;
pub mod workload;

pub use cache::ArtifactCache;
pub use explain::explain;
pub use report::Table;
pub use session::{Comparison, Scale, Session};
