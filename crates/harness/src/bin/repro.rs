//! `repro` — regenerate the I-SPY paper's tables and figures.
//!
//! ```text
//! repro list                      # show available experiments
//! repro fig10                     # run one experiment at full scale
//! repro fig10 fig11 --quick       # several experiments, reduced scale
//! repro all --json out/           # everything, also writing JSON per figure
//! repro all --metrics out/        # everything, plus telemetry JSON per figure
//! repro all --cache               # memoize traces/profiles/plans on disk
//! repro all --jobs 8              # cap the worker pool at 8 threads
//! repro fig17 --apps wordpress    # run on a subset of the applications
//! repro explain wordpress --quick # why/what-did-it-buy audit per injection
//! repro record kafka -o k.itrace  # record an execution to an artifact
//! repro record kafka --stream --events 100000000 -o k.itrace
//!                                 # stream-record without materializing
//! repro plan kafka -o k.iplan     # plan injections, save with provenance
//! repro replay k.itrace           # re-simulate a recorded artifact
//! repro replay k.itrace --stream  # same result, bounded memory
//! repro ingest perf.txt           # lift a perf-script LBR dump to .itrace
//! repro bench                     # quick engine bench vs committed history
//! repro bench --check             # same, failing on a >20% throughput drop
//! ```

use ispy_harness::cache::{ArtifactCache, DEFAULT_CACHE_DIR};
use ispy_harness::{explain, figures, metrics, Scale, Session};
use ispy_telemetry::{Telemetry, TimingMode};
use ispy_trace::apps;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
        return ExitCode::FAILURE;
    }
    match args[0].as_str() {
        "bench" => return run_bench(&args[1..]),
        "record" => return run_record(&args[1..]),
        "plan" => return run_plan(&args[1..]),
        "replay" => return run_replay(&args[1..]),
        "ingest" => return run_ingest(&args[1..]),
        _ => {}
    }
    let mut ids: Vec<String> = Vec::new();
    let mut cache_dir: Option<PathBuf> = None;
    let mut scale = Scale::full();
    let mut json_dir: Option<PathBuf> = None;
    let mut metrics_dir: Option<PathBuf> = None;
    let mut app_names: Option<Vec<String>> = None;
    let mut explain_mode = false;
    let mut explain_app: Option<String> = None;
    let mut top_n = 10usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => scale = Scale::quick(),
            "--test-scale" => scale = Scale::test(),
            "--json" => {
                i += 1;
                match args.get(i) {
                    Some(dir) => json_dir = Some(PathBuf::from(dir)),
                    None => {
                        eprintln!("--json needs a directory");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--metrics" => {
                i += 1;
                match args.get(i) {
                    Some(dir) => metrics_dir = Some(PathBuf::from(dir)),
                    None => {
                        eprintln!("--metrics needs a directory");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--top" => {
                i += 1;
                match args.get(i).and_then(|n| n.parse::<usize>().ok()) {
                    Some(n) if n >= 1 => top_n = n,
                    _ => {
                        eprintln!("--top needs a count >= 1");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--jobs" | "-j" => {
                i += 1;
                match args.get(i).and_then(|n| n.parse::<usize>().ok()) {
                    Some(n) if n >= 1 => ispy_parallel::set_threads(n),
                    _ => {
                        eprintln!("--jobs needs a thread count >= 1");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--apps" => {
                i += 1;
                match args.get(i) {
                    Some(list) => {
                        app_names = Some(list.split(',').map(|s| s.trim().to_string()).collect())
                    }
                    None => {
                        eprintln!(
                            "--apps needs a comma-separated list; known: {}",
                            apps::NAMES.join(",")
                        );
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--cache" => cache_dir = Some(PathBuf::from(DEFAULT_CACHE_DIR)),
            flag if flag.starts_with("--cache=") => {
                let dir = &flag["--cache=".len()..];
                if dir.is_empty() {
                    eprintln!("--cache=DIR needs a directory");
                    return ExitCode::FAILURE;
                }
                cache_dir = Some(PathBuf::from(dir));
            }
            "list" => {
                for spec in figures::all() {
                    println!("{:12} {}", spec.id, spec.about);
                }
                return ExitCode::SUCCESS;
            }
            "all" => ids.extend(figures::all().into_iter().map(|s| s.id.to_string())),
            "explain" => explain_mode = true,
            other => {
                if explain_mode && explain_app.is_none() {
                    explain_app = Some(other.to_string());
                } else {
                    ids.push(other.to_string());
                }
            }
        }
        i += 1;
    }
    if explain_mode {
        let Some(app) = explain_app else {
            eprintln!("explain needs an app name; known: {}", apps::NAMES.join(","));
            return ExitCode::FAILURE;
        };
        return run_explain(&app, scale, top_n);
    }
    ids.dedup();
    for id in &ids {
        if figures::by_id(id).is_none() {
            eprintln!("unknown experiment `{id}`; try `repro list`");
            return ExitCode::FAILURE;
        }
    }
    let models = match &app_names {
        None => apps::all(),
        Some(names) => {
            let mut models = Vec::new();
            for name in names {
                match apps::by_name(name) {
                    Some(m) => models.push(m),
                    None => {
                        eprintln!("unknown app `{name}`; known: {}", apps::NAMES.join(","));
                        return ExitCode::FAILURE;
                    }
                }
            }
            models
        }
    };

    eprintln!(
        "preparing {} applications (shrink={}, events={}, threads={}) ...",
        models.len(),
        scale.shrink,
        scale.events,
        ispy_parallel::threads(),
    );
    for dir in [&json_dir, &metrics_dir].into_iter().flatten() {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    }
    let t0 = Instant::now();
    let session = match &cache_dir {
        Some(dir) => {
            eprintln!("artifact cache: {}", dir.display());
            Session::with_cache(scale, models, ArtifactCache::new(dir, scale))
        }
        None => Session::with_apps(scale, models),
    };
    eprintln!("prepared in {:.1?}", t0.elapsed());
    if let Some(dir) = &metrics_dir {
        // Preparation telemetry (profiling replays, CFG builds) accumulated
        // in the startup registry; harvest it before per-figure scoping.
        if write_telemetry(dir, "prepare").is_err() {
            return ExitCode::FAILURE;
        }
    }

    for id in &ids {
        let spec = figures::by_id(id).expect("validated above");
        if metrics_dir.is_some() {
            // A fresh registry per figure attributes planner/profiler work
            // to the experiment that triggered it. Session caches persist,
            // so a figure that only reads cached comparisons shows (almost)
            // empty counters — that, too, is information.
            ispy_telemetry::swap_global(Arc::new(Telemetry::new()));
        }
        let t = Instant::now();
        let table = (spec.run)(&session);
        let secs = t.elapsed().as_secs_f64();
        println!("{table}");
        eprintln!("[{id} took {secs:.1}s]\n");
        if let Some(dir) = &json_dir {
            let path = dir.join(format!("{id}.json"));
            if let Err(e) = std::fs::write(&path, table.to_json_with_runtime(Some(secs))) {
                eprintln!("cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
        if let Some(dir) = &metrics_dir {
            if write_telemetry(dir, id).is_err() {
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(dir) = &metrics_dir {
        let path = dir.join("outcomes.json");
        if let Err(e) = std::fs::write(&path, metrics::outcome_summary(&session)) {
            eprintln!("cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

/// Writes the current global registry as `<dir>/<name>.telemetry.json`.
fn write_telemetry(dir: &std::path::Path, name: &str) -> Result<(), ()> {
    let path = dir.join(format!("{name}.telemetry.json"));
    let json = ispy_telemetry::global().to_json(TimingMode::Full);
    std::fs::write(&path, json).map_err(|e| {
        eprintln!("cannot write {}: {e}", path.display());
    })
}

/// `repro explain <app>`: prepare just that app and print the markdown
/// provenance/outcome audit of its top-N injections.
fn run_explain(app: &str, scale: Scale, top_n: usize) -> ExitCode {
    let Some(model) = apps::by_name(app) else {
        eprintln!("unknown app `{app}`; known: {}", apps::NAMES.join(","));
        return ExitCode::FAILURE;
    };
    eprintln!(
        "preparing {app} (shrink={}, events={}, threads={}) ...",
        scale.shrink,
        scale.events,
        ispy_parallel::threads(),
    );
    let t0 = Instant::now();
    let session = Session::with_apps(scale, vec![model]);
    match explain(&session, app, top_n) {
        Ok(report) => {
            eprintln!("prepared and analysed in {:.1?}\n", t0.elapsed());
            println!("{report}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}

/// Throughput rows the `--check` floor gate watches: the tentpole metrics.
/// The remaining rows are printed for context but a dip there never fails
/// the gate (baseline/hw throughput is not what this PR series optimizes).
const GATED_ROWS: [&str; 3] = ["injected", "injected_replay", "stream_replay"];

/// A measured row may drop this fraction below the committed value before
/// `--check` fails. Wide enough to absorb shared-runner noise on a
/// best-of-reps measurement, narrow enough to catch a real fast-path
/// regression (the rework's wins were 2–6x).
const FLOOR_FRACTION: f64 = 0.20;

/// `repro bench`: run the engine throughput benchmark (quick sizing by
/// default) and print each row's blocks/sec next to the committed
/// `BENCH_engine.json` value, so a regression is visible without reading
/// JSON. `--check` turns a >20% drop on the injected rows into a failing
/// exit code — the CI throughput-floor gate.
fn run_bench(args: &[String]) -> ExitCode {
    let mut quick = true;
    let mut check = false;
    let mut baseline = PathBuf::from("BENCH_engine.json");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--full" => quick = false,
            "--check" => check = true,
            "--baseline" => {
                i += 1;
                match args.get(i) {
                    Some(p) => baseline = PathBuf::from(p),
                    None => return fail("--baseline needs a JSON file path"),
                }
            }
            other => return fail(&format!("unknown bench flag `{other}`")),
        }
        i += 1;
    }

    let sizing = if quick { "quick" } else { "full" };
    eprintln!("measuring engine throughput ({sizing} sizing) ...");
    let bench = ispy_harness::enginebench::run_engine_bench(quick);
    println!(
        "engine bench: {} / {} events / best of {} reps (first rep discarded)",
        bench.app, bench.events, bench.reps
    );

    let doc = match ispy_harness::enginebench::load_history(&baseline) {
        Ok(doc) => Some(doc),
        Err(e) => {
            eprintln!("note: {e}");
            None
        }
    };
    let committed = doc.as_ref().and_then(|d| ispy_harness::enginebench::latest_entry(d, quick));
    if let Some(entry) = committed {
        let label = entry.get("label").and_then(|l| l.as_str()).unwrap_or("?");
        println!("committed reference: `{label}` in {}", baseline.display());
    }

    let mut floor_breaches = Vec::new();
    for row in &bench.rows {
        let rss = match row.peak_rss_bytes {
            Some(_) => {
                format!("   peak RSS {}", ispy_harness::rss::format_bytes(row.peak_rss_bytes))
            }
            None => String::new(),
        };
        let reference = committed.and_then(|e| ispy_harness::enginebench::entry_row(e, row.name));
        match reference {
            Some(reference) if reference > 0.0 => {
                let delta = (row.blocks_per_sec - reference) / reference * 100.0;
                println!(
                    "  {:<16} {:>12.0} blocks/s   committed {:>12.0}   {:>+7.1}%{rss}",
                    row.name, row.blocks_per_sec, reference, delta
                );
                if GATED_ROWS.contains(&row.name) && delta < -100.0 * FLOOR_FRACTION {
                    floor_breaches.push(format!(
                        "{}: {:.0} blocks/s is {:.1}% below committed {:.0}",
                        row.name, row.blocks_per_sec, -delta, reference
                    ));
                }
            }
            _ => println!(
                "  {:<16} {:>12.0} blocks/s   (no committed reference){rss}",
                row.name, row.blocks_per_sec
            ),
        }
    }

    if check {
        if committed.is_none() {
            return fail(&format!(
                "--check needs a committed {sizing}-sizing entry in {}",
                baseline.display()
            ));
        }
        if !floor_breaches.is_empty() {
            for b in &floor_breaches {
                eprintln!("throughput floor breached: {b}");
            }
            return ExitCode::FAILURE;
        }
        println!(
            "throughput floor ok: gated rows within {:.0}% of committed values",
            100.0 * FLOOR_FRACTION
        );
    }
    ExitCode::SUCCESS
}

fn usage() {
    eprintln!("usage: repro <list|all|fig01|fig03|...|fig21|table1|walkthrough>");
    eprintln!("             [--quick | --test-scale] [--json DIR] [--metrics DIR]");
    eprintln!("             [--cache[=DIR]] [--jobs N] [--apps a,b,c]");
    eprintln!("       repro explain <app> [--quick | --test-scale] [--top N] [--jobs N]");
    eprintln!("       repro record <app> [--quick | --test-scale] [--stream] [--events N]");
    eprintln!("                   [-o FILE.itrace]");
    eprintln!("       repro plan <app> [--quick | --test-scale] [-o FILE.iplan]");
    eprintln!("       repro replay <FILE.itrace> [--plan FILE.iplan] [--stream]");
    eprintln!("       repro ingest <perf-script.txt> [-o FILE.itrace]");
    eprintln!("       repro bench [--full] [--check] [--baseline BENCH_engine.json]");
    eprintln!("       (--cache defaults to {DEFAULT_CACHE_DIR}/)");
}

/// Flags shared by the artifact subcommands.
struct ArtifactArgs {
    positional: Vec<String>,
    scale: Scale,
    out: Option<PathBuf>,
    /// `--stream`: bounded-memory path (streamed record / streamed replay).
    stream: bool,
    /// `--events N`: explicit event count, overriding the scale's default.
    events: Option<u64>,
}

/// Parses the scale/output flags shared by the artifact subcommands.
fn parse_artifact_args(args: &[String]) -> Result<ArtifactArgs, String> {
    let mut parsed = ArtifactArgs {
        positional: Vec::new(),
        scale: Scale::full(),
        out: None,
        stream: false,
        events: None,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => parsed.scale = Scale::quick(),
            "--test-scale" => parsed.scale = Scale::test(),
            "--stream" => parsed.stream = true,
            "--events" => {
                i += 1;
                match args.get(i).and_then(|n| n.parse::<u64>().ok()) {
                    Some(n) => parsed.events = Some(n),
                    None => return Err("--events needs an event count".to_string()),
                }
            }
            "-o" | "--out" => {
                i += 1;
                match args.get(i) {
                    Some(p) => parsed.out = Some(PathBuf::from(p)),
                    None => return Err("-o needs a file path".to_string()),
                }
            }
            flag if flag.starts_with('-') && flag != "--plan" => {
                return Err(format!("unknown flag `{flag}`"));
            }
            other => parsed.positional.push(other.to_string()),
        }
        i += 1;
    }
    Ok(parsed)
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("{msg}");
    ExitCode::FAILURE
}

/// `repro record <app>`: record an execution and store it as `.itrace`.
///
/// With `--stream` the trace never exists in memory: the generator feeds a
/// [`RecordingWriter`](ispy_trace::artifact::RecordingWriter) chunk by
/// chunk, so `--events` can exceed RAM (the 100M-block CI gate records this
/// way under a ulimit).
fn run_record(args: &[String]) -> ExitCode {
    let parsed = match parse_artifact_args(args) {
        Ok(p) => p,
        Err(e) => return fail(&e),
    };
    let [app] = parsed.positional.as_slice() else {
        return fail(&format!("record needs exactly one app; known: {}", apps::NAMES.join(",")));
    };
    let Some(model) = apps::by_name(app) else {
        return fail(&format!("unknown app `{app}`; known: {}", apps::NAMES.join(",")));
    };
    let model = model.scaled_down(parsed.scale.shrink);
    let program = model.generate();
    let events = parsed.events.unwrap_or(parsed.scale.events as u64);
    let path = parsed.out.unwrap_or_else(|| PathBuf::from(format!("{app}.itrace")));
    let written = if parsed.stream {
        let walker = ispy_trace::Walker::new(&program, model.default_input());
        let mut source = ispy_trace::WalkerSource::new(walker, events);
        let mut writer =
            match ispy_trace::artifact::RecordingWriter::create(&path, &program, program.name()) {
                Ok(w) => w,
                Err(e) => return fail(&e.to_string()),
            };
        loop {
            use ispy_trace::BlockSource;
            match source.next_chunk() {
                Ok(Some(chunk)) => {
                    if let Err(e) = writer.push(chunk) {
                        return fail(&e.to_string());
                    }
                }
                Ok(None) => break,
                Err(e) => return fail(&e.to_string()),
            }
        }
        let written = writer.events_written();
        if let Err(e) = writer.finish() {
            return fail(&e.to_string());
        }
        written
    } else {
        if events > usize::MAX as u64 {
            return fail("--events too large to materialize; use --stream");
        }
        let trace = program.record_trace(model.default_input(), events as usize);
        if let Err(e) = ispy_trace::artifact::write_recording(&program, &trace, &path) {
            return fail(&e.to_string());
        }
        trace.len() as u64
    };
    eprintln!(
        "recorded {app}: {} blocks, {} events{} -> {}",
        program.num_blocks(),
        written,
        if parsed.stream { " (streamed)" } else { "" },
        path.display()
    );
    ExitCode::SUCCESS
}

/// `repro plan <app>`: profile, plan I-SPY injections, store as `.iplan`.
fn run_plan(args: &[String]) -> ExitCode {
    let parsed = match parse_artifact_args(args) {
        Ok(p) => p,
        Err(e) => return fail(&e),
    };
    let (scale, out) = (parsed.scale, parsed.out);
    let [app] = parsed.positional.as_slice() else {
        return fail(&format!("plan needs exactly one app; known: {}", apps::NAMES.join(",")));
    };
    let Some(model) = apps::by_name(app) else {
        return fail(&format!("unknown app `{app}`; known: {}", apps::NAMES.join(",")));
    };
    let ctx = ispy_harness::session::AppContext::prepare(model, scale);
    let plan = ispy_core::Planner::new(
        &ctx.program,
        &ctx.trace,
        &ctx.profile,
        ispy_core::IspyConfig::default(),
    )
    .plan();
    let path = out.unwrap_or_else(|| PathBuf::from(format!("{app}.iplan")));
    if let Err(e) = ispy_core::artifact::write_plan(app, &plan, &path) {
        return fail(&e.to_string());
    }
    eprintln!(
        "planned {app}: {} ops at {} sites ({} bytes injected) -> {}",
        plan.stats.ops_total(),
        plan.stats.sites,
        plan.stats.injected_bytes,
        path.display()
    );
    ExitCode::SUCCESS
}

/// `repro replay <file.itrace> [--plan file.iplan] [--stream]`: re-simulate
/// a recorded artifact and print the canonical metric lines. `--stream`
/// replays in bounded memory (the file's events are decoded chunk by chunk,
/// never materialized) and prints byte-identical output.
fn run_replay(args: &[String]) -> ExitCode {
    let mut files = Vec::new();
    let mut plan_file: Option<PathBuf> = None;
    let mut stream = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--plan" => {
                i += 1;
                match args.get(i) {
                    Some(p) => plan_file = Some(PathBuf::from(p)),
                    None => return fail("--plan needs a .iplan file"),
                }
            }
            "--stream" => stream = true,
            flag if flag.starts_with('-') => return fail(&format!("unknown flag `{flag}`")),
            other => files.push(PathBuf::from(other)),
        }
        i += 1;
    }
    let [path] = files.as_slice() else {
        return fail("replay needs exactly one .itrace file");
    };
    let plan = match &plan_file {
        Some(p) => match ispy_core::artifact::read_plan(p) {
            Ok((label, plan)) => Some((label, plan)),
            Err(e) => return fail(&e.to_string()),
        },
        None => None,
    };
    let cfg = ispy_sim::SimConfig::default();
    let opts = ispy_sim::RunOptions {
        injections: plan.as_ref().map(|(_, p)| &p.injections),
        ..Default::default()
    };
    let (name, result) = if stream {
        match ispy_sim::replay_file_streaming(path, &cfg, opts) {
            Ok(out) => (out.name, out.result),
            Err(e) => return fail(&e.to_string()),
        }
    } else {
        let (program, trace) = match ispy_trace::artifact::read_recording(path) {
            Ok(pair) => pair,
            Err(e) => return fail(&e.to_string()),
        };
        let result = ispy_sim::run(&program, &trace, &cfg, opts);
        (program.name().to_string(), result)
    };
    if let Some((label, _)) = &plan {
        if label != &name {
            eprintln!("warning: plan was built for `{label}`, replaying `{name}`");
        }
    }
    print!("{}", metrics::result_lines(&name, &result));
    ExitCode::SUCCESS
}

/// `repro ingest <perf.txt>`: lift a perf-script LBR dump into `.itrace`.
fn run_ingest(args: &[String]) -> ExitCode {
    let parsed = match parse_artifact_args(args) {
        Ok(p) => p,
        Err(e) => return fail(&e),
    };
    let out = parsed.out;
    let [input] = parsed.positional.as_slice() else {
        return fail("ingest needs exactly one perf-script text file");
    };
    let text = match std::fs::read_to_string(input) {
        Ok(t) => t,
        Err(e) => return fail(&format!("cannot read {input}: {e}")),
    };
    let (program, trace) = match ispy_trace::ingest::parse_perf_script(&text) {
        Ok(pair) => pair,
        Err(e) => return fail(&e.to_string()),
    };
    let path = out.unwrap_or_else(|| PathBuf::from(input).with_extension("itrace"));
    if let Err(e) = ispy_trace::artifact::write_recording(&program, &trace, &path) {
        return fail(&e.to_string());
    }
    eprintln!(
        "ingested {input}: {} blocks, {} events -> {}",
        program.num_blocks(),
        trace.len(),
        path.display()
    );
    ExitCode::SUCCESS
}
