use ispy_baselines::asmdb::{AsmDbConfig, AsmDbPlanner};
use ispy_core::{IspyConfig, Planner};
use ispy_profile::{profile, SampleRate};
use ispy_sim::{run, RunOptions, SimConfig};
use std::time::Instant;

fn main() {
    let t0 = Instant::now();
    let model = ispy_trace::apps::wordpress();
    let program = model.generate();
    println!(
        "gen {:?} blocks={} text={}KiB",
        t0.elapsed(),
        program.num_blocks(),
        program.text_bytes() / 1024
    );
    let t = Instant::now();
    let trace = program.record_trace(model.default_input(), 1_000_000);
    println!("trace {:?}", t.elapsed());
    let scfg = SimConfig::default();
    let t = Instant::now();
    let base = run(&program, &trace, &scfg, RunOptions::default());
    println!(
        "sim {:?} cycles={} mpki={:.1} fb={:.2}",
        t.elapsed(),
        base.cycles,
        base.mpki(),
        base.frontend_bound()
    );
    let ideal = run(&program, &trace, &SimConfig::ideal(), RunOptions::default());
    println!("ideal speedup over base: {:.3}", ideal.speedup_over(&base));
    let t = Instant::now();
    let prof = profile(&program, &trace, &scfg, SampleRate::EXACT);
    println!(
        "profile {:?} misses={} lines={}",
        t.elapsed(),
        prof.misses.total_misses(),
        prof.misses.num_lines()
    );
    let t = Instant::now();
    let plan = Planner::new(&program, &trace, &prof, IspyConfig::default()).plan();
    println!(
        "plan {:?} ops={} covered={}/{} ctx={} static={:.3} no_cand={} no_sites={} dropped={}",
        t.elapsed(),
        plan.stats.ops_total(),
        plan.stats.covered_lines,
        plan.stats.target_lines,
        plan.stats.contexts_adopted,
        plan.stats.static_increase,
        plan.stats.lines_no_candidates,
        plan.stats.lines_no_sites,
        plan.stats.entries_dropped
    );
    let t = Instant::now();
    let ispy = run(
        &program,
        &trace,
        &scfg,
        RunOptions { injections: Some(&plan.injections), ..Default::default() },
    );
    println!("ispy sim {:?} speedup={:.3} (ideal {:.3}) frac_ideal={:.3} mpki_red={:.3} acc={:.3} dyn={:.3}",
        t.elapsed(), ispy.speedup_over(&base), ideal.speedup_over(&base),
        ispy.fraction_of_ideal(&base, &ideal), ispy.mpki_reduction_vs(&base), ispy.accuracy(), ispy.dynamic_increase());
    println!("ispy detail: issued={} resident={} useful={} late={} evicted_unused={} fired={} suppressed={}",
        ispy.pf_lines_issued, ispy.pf_lines_resident, ispy.pf_useful, ispy.pf_late, ispy.pf_evicted_unused, ispy.pf_ops_fired, ispy.pf_ops_suppressed);
    // Which lines still miss under I-SPY?
    {
        use ispy_sim::SimObserver;
        use ispy_trace::{BlockId, Line};
        use std::collections::HashMap;
        #[derive(Default)]
        struct MissLines {
            by_line: HashMap<u64, u64>,
        }
        impl SimObserver for MissLines {
            fn icache_miss(&mut self, _i: usize, _b: BlockId, l: Line, _c: u64) {
                *self.by_line.entry(l.raw()).or_insert(0) += 1;
            }
        }
        let mut obs = MissLines::default();
        run(
            &program,
            &trace,
            &scfg,
            RunOptions {
                injections: Some(&plan.injections),
                observer: Some(&mut obs),
                ..Default::default()
            },
        );
        // Planned target lines:
        let mut planned: std::collections::HashSet<u64> = Default::default();
        for (_, ops) in plan.injections.iter() {
            for op in ops {
                for l in op.target_lines() {
                    planned.insert(l.raw());
                }
            }
        }
        let (mut on_planned, mut off_planned) = (0u64, 0u64);
        for (l, c) in &obs.by_line {
            if planned.contains(l) {
                on_planned += c;
            } else {
                off_planned += c;
            }
        }
        println!(
            "remaining misses: on planned lines={} on unplanned lines={}",
            on_planned, off_planned
        );
        // miss count histogram of unplanned lines in original profile
        let mut unplanned_profiled = 0u64;
        let mut unplanned_unprofiled = 0u64;
        for (l, c) in &obs.by_line {
            if !planned.contains(l) {
                match prof.misses.line(Line::new(*l)) {
                    Some(s) if s.count >= 2 => unplanned_profiled += c,
                    _ => unplanned_unprofiled += c,
                }
            }
        }
        println!(
            "unplanned split: profiled(>=2 misses)={} cold/rare={}",
            unplanned_profiled, unplanned_unprofiled
        );
    }
    for (mn, mx) in [(27u32, 120u32), (40, 200), (60, 250)] {
        let cfg2 = IspyConfig::default().with_distances(mn, mx);
        let plan2 = Planner::new(&program, &trace, &prof, cfg2).plan();
        let r2 = run(
            &program,
            &trace,
            &scfg,
            RunOptions { injections: Some(&plan2.injections), ..Default::default() },
        );
        println!(
            "dist {}..{}: frac_ideal={:.3} mpki_red={:.3} acc={:.3} dyn={:.3} late={} evict={}",
            mn,
            mx,
            r2.fraction_of_ideal(&base, &ideal),
            r2.mpki_reduction_vs(&base),
            r2.accuracy(),
            r2.dynamic_increase(),
            r2.pf_late,
            r2.pf_evicted_unused
        );
    }
    let t = Instant::now();
    let aplan = AsmDbPlanner::new(&program, &prof, AsmDbConfig::default()).plan();
    let asmdb = run(
        &program,
        &trace,
        &scfg,
        RunOptions { injections: Some(&aplan.injections), ..Default::default() },
    );
    println!(
        "asmdb {:?} speedup={:.3} frac_ideal={:.3} mpki_red={:.3} acc={:.3} dyn={:.3} static={:.3}",
        t.elapsed(),
        asmdb.speedup_over(&base),
        asmdb.fraction_of_ideal(&base, &ideal),
        asmdb.mpki_reduction_vs(&base),
        asmdb.accuracy(),
        asmdb.dynamic_increase(),
        aplan.stats.static_increase
    );
}
// appended diagnostics
