//! A minimal JSON document model — just enough to read and append to the
//! committed benchmark history (`BENCH_engine.json`) without external
//! dependencies.
//!
//! The repo's other JSON producers ([`Table::to_json`](crate::report::Table),
//! telemetry) only *write*, with hand-built strings; the bench history is the
//! first file we must read back, merge, and re-emit. This module keeps that
//! honest: objects preserve insertion order so a parse → edit → serialize
//! round trip only changes what was edited.
//!
//! Scope: the full JSON grammar minus two corners we never produce — no
//! `\uXXXX` escapes beyond ASCII and no exponent canonicalization (numbers
//! round-trip through `f64`, with integers up to 2^53 printed exactly).

use std::fmt::Write as _;

/// A parsed JSON value. Object members keep their source order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (integers survive exactly up to 2^53).
    Num(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses a JSON document, rejecting trailing garbage.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }

    /// Member lookup on an object; `None` for other variants or missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Mutable member lookup on an object.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Json> {
        match self {
            Json::Obj(members) => members.iter_mut().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Sets `key` on an object, replacing an existing member in place or
    /// appending a new one. No-op on non-objects.
    pub fn set(&mut self, key: &str, value: Json) {
        if let Json::Obj(members) = self {
            match members.iter_mut().find(|(k, _)| k == key) {
                Some((_, v)) => *v = value,
                None => members.push((key.to_string(), value)),
            }
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes with two-space indentation and a trailing newline, matching
    /// the style of the repo's other committed JSON artifacts.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        write_value(&mut out, self, 0);
        out.push('\n');
        out
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(&b) = bytes.get(*pos) {
        if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
            *pos += 1;
        } else {
            break;
        }
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {pos}", b as char))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
        None => Err("unexpected end of input".to_string()),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while matches!(bytes.get(*pos), Some(b) if b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii digits");
    text.parse::<f64>().map(Json::Num).map_err(|_| format!("bad number `{text}` at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let esc = bytes.get(*pos).ok_or("unterminated escape")?;
                out.push(match esc {
                    b'"' => '"',
                    b'\\' => '\\',
                    b'/' => '/',
                    b'n' => '\n',
                    b't' => '\t',
                    b'r' => '\r',
                    b'b' => '\u{8}',
                    b'f' => '\u{c}',
                    other => return Err(format!("unsupported escape `\\{}`", *other as char)),
                });
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (the input came from a &str, so
                // boundaries are valid).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let ch = rest.chars().next().ok_or("unterminated string")?;
                out.push(ch);
                *pos += ch.len_utf8();
            }
            None => return Err("unterminated string".to_string()),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {pos}")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        members.push((key, parse_value(bytes, pos)?));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
        }
    }
}

fn write_value(out: &mut String, value: &Json, indent: usize) {
    match value {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Num(n) => write_number(out, *n),
        Json::Str(s) => write_string(out, s),
        Json::Arr(items) if items.is_empty() => out.push_str("[]"),
        Json::Arr(items) => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                pad(out, indent + 1);
                write_value(out, item, indent + 1);
                out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
            }
            pad(out, indent);
            out.push(']');
        }
        Json::Obj(members) if members.is_empty() => out.push_str("{}"),
        Json::Obj(members) => {
            out.push_str("{\n");
            for (i, (key, val)) in members.iter().enumerate() {
                pad(out, indent + 1);
                write_string(out, key);
                out.push_str(": ");
                write_value(out, val, indent + 1);
                out.push_str(if i + 1 < members.len() { ",\n" } else { "\n" });
            }
            pad(out, indent);
            out.push('}');
        }
    }
}

fn pad(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_number(out: &mut String, n: f64) {
    // Whole numbers in the safe-integer range print without a fraction, so
    // counters stay grep-able; everything else keeps two decimals (the only
    // non-integers we emit are ratios).
    if n.fract() == 0.0 && n.abs() < 9.0e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n:.2}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_the_bench_history_shape() {
        let text = concat!(
            "{\n  \"bench\": \"engine\",\n  \"events\": 200000,\n",
            "  \"history\": [\n    {\n      \"label\": \"pre\",\n",
            "      \"blocks_per_sec\": {\n        \"baseline\": 5320311\n      }\n",
            "    }\n  ]\n}\n"
        );
        let doc = Json::parse(text).unwrap();
        assert_eq!(doc.get("bench").and_then(Json::as_str), Some("engine"));
        assert_eq!(doc.get("events").and_then(Json::as_f64), Some(200_000.0));
        let history = doc.get("history").and_then(Json::as_arr).unwrap();
        assert_eq!(history.len(), 1);
        assert_eq!(
            history[0].get("blocks_per_sec").and_then(|b| b.get("baseline")).and_then(Json::as_f64),
            Some(5_320_311.0)
        );
        // Parse → serialize is the identity on documents we emit ourselves.
        assert_eq!(doc.to_pretty(), text);
    }

    #[test]
    fn parses_escapes_literals_and_nesting() {
        let doc = Json::parse(r#"{"a": [true, false, null, -1.5, "x\n\"y\""], "b": {}}"#).unwrap();
        let a = doc.get("a").and_then(Json::as_arr).unwrap();
        assert_eq!(a[0].as_bool(), Some(true));
        assert_eq!(a[3].as_f64(), Some(-1.5));
        assert_eq!(a[4].as_str(), Some("x\n\"y\""));
        assert_eq!(doc.get("b"), Some(&Json::Obj(Vec::new())));
    }

    #[test]
    fn set_replaces_in_place_and_appends() {
        let mut doc = Json::parse(r#"{"a": 1, "b": 2}"#).unwrap();
        doc.set("a", Json::Num(9.0));
        doc.set("c", Json::Str("new".into()));
        assert_eq!(doc.to_pretty(), "{\n  \"a\": 9,\n  \"b\": 2,\n  \"c\": \"new\"\n}\n");
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{} trailing").is_err());
        assert!(Json::parse("nul").is_err());
    }
}
