//! The engine-throughput benchmark core, shared by the `ispy-bench` bench
//! target (`cargo bench -p ispy-bench --bench engine`) and the `repro bench`
//! subcommand so both measure *exactly* the same thing.
//!
//! The benchmark replays one workload (cassandra, miss-derived plan touching
//! all four prefetch-op kinds) through [`ispy_sim::run`] in six
//! configurations:
//!
//! | row               | what it pays for                                    |
//! |-------------------|-----------------------------------------------------|
//! | `baseline`        | bare replay, no injections                          |
//! | `injected`        | plan lowering + injected replay (one-shot cost)     |
//! | `injected_replay` | injected replay of a *pre-compiled* plan — the pure |
//! |                   | replay tax the sweeps pay per configuration         |
//! | `injected_ledger` | pre-compiled replay + per-injection outcome ledger  |
//! | `hw_prefetcher`   | bare replay + next-line hardware prefetcher         |
//! | `stream_replay`   | pre-compiled replay through the streaming decoder:  |
//! |                   | `.itrace` bytes → chunked decode → `run_streaming`, |
//! |                   | the bounded-memory path (also reports peak RSS)     |
//!
//! Measurement protocol: every configuration runs `reps + 1` times; the
//! first repetition is discarded unconditionally (cache/allocator warmup —
//! discarding it *uniformly* keeps rows comparable; an earlier version let a
//! cold repetition into the ledger row's best-of and understated it), and
//! the best of the remaining `reps` is reported as blocks/sec.
//!
//! Results accumulate in the committed `BENCH_engine.json` as an ordered
//! `history` array — every `--json` run appends a labelled entry rather
//! than overwriting, so the perf trajectory across reworks stays visible.

use crate::json::Json;
use crate::rss;
use crate::workload::miss_derived_plan;
use ispy_isa::{CompiledInjections, InjectionMap};
use ispy_sim::{run, run_streaming, HwPrefetcher, OutcomeLedger, RunOptions, SimConfig};
use ispy_trace::artifact::{open_recording_stream, recording_to_bytes};
use ispy_trace::{apps, Line, Program, Trace};
use std::path::Path;
use std::time::Instant;

/// Timed repetitions (after the discarded warmup rep) at full scale.
pub const FULL_REPS: usize = 5;
/// Timed repetitions at `--quick` (CI smoke) scale.
pub const QUICK_REPS: usize = 3;

/// One measured configuration: name and best-observed blocks/sec.
#[derive(Debug, Clone, Copy)]
pub struct BenchRow {
    /// Stable row name, used as the JSON key.
    pub name: &'static str,
    /// Best observed throughput in trace blocks per second.
    pub blocks_per_sec: f64,
    /// Process peak RSS across the row's measurement window, for rows where
    /// memory footprint is the point (the streaming row). `None` elsewhere
    /// and on platforms without `/proc`.
    pub peak_rss_bytes: Option<u64>,
}

impl BenchRow {
    fn new(name: &'static str, blocks_per_sec: f64) -> Self {
        BenchRow { name, blocks_per_sec, peak_rss_bytes: None }
    }
}

/// A complete benchmark run: the workload shape plus every measured row.
#[derive(Debug, Clone)]
pub struct BenchRun {
    /// Application model the trace was recorded from.
    pub app: String,
    /// Trace length in events (= blocks replayed per repetition).
    pub events: usize,
    /// Timed repetitions per row (best-of, after one discarded warmup rep).
    pub reps: usize,
    /// Whether this was the reduced `--quick` sizing.
    pub quick: bool,
    /// Measured rows, in canonical order.
    pub rows: Vec<BenchRow>,
}

impl BenchRun {
    /// The measured throughput for `name`, if that row exists.
    pub fn row(&self, name: &str) -> Option<f64> {
        self.rows.iter().find(|r| r.name == name).map(|r| r.blocks_per_sec)
    }
}

/// Next-line-on-miss hardware prefetcher, the simplest hook that keeps the
/// in-flight bookkeeping busy.
struct NextLine;

impl HwPrefetcher for NextLine {
    fn on_fetch(&mut self, line: Line, was_miss: bool, out: &mut Vec<Line>) {
        if was_miss {
            out.push(line.offset(1));
        }
    }
}

struct Workload {
    program: Program,
    trace: Trace,
    cfg: SimConfig,
    plan: InjectionMap,
    compiled: CompiledInjections,
    events: usize,
}

fn prepare(quick: bool) -> Workload {
    let (shrink, events) = if quick { (20, 50_000) } else { (10, 200_000) };
    let model = apps::cassandra().scaled_down(shrink);
    let program = model.generate();
    let trace = program.record_trace(model.default_input(), events);
    let cfg = SimConfig::default();
    let plan = miss_derived_plan(&program, &trace, &cfg);
    let compiled = plan.compile(program.num_blocks());
    Workload { program, trace, cfg, plan, compiled, events }
}

/// Times `f` over `reps + 1` repetitions, discards the first (warmup), and
/// returns the best remaining blocks/sec. The discard is unconditional and
/// identical for every row — see the module docs for why that matters.
fn measure(events: usize, reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for rep in 0..=reps {
        let t0 = Instant::now();
        f();
        let secs = t0.elapsed().as_secs_f64();
        if rep > 0 {
            best = best.min(secs);
        }
    }
    events as f64 / best
}

/// Runs the full five-row benchmark at the given sizing and returns every
/// measured row. This is the single definition of "the engine bench" — the
/// bench binary and `repro bench` both call it.
pub fn run_engine_bench(quick: bool) -> BenchRun {
    let reps = if quick { QUICK_REPS } else { FULL_REPS };
    let w = prepare(quick);
    let events = w.events;

    let baseline = measure(events, reps, || {
        run(&w.program, &w.trace, &w.cfg, RunOptions::default());
    });
    let injected = measure(events, reps, || {
        run(
            &w.program,
            &w.trace,
            &w.cfg,
            RunOptions { injections: Some(&w.plan), ..Default::default() },
        );
    });
    let injected_replay = measure(events, reps, || {
        run(
            &w.program,
            &w.trace,
            &w.cfg,
            RunOptions { compiled: Some(&w.compiled), ..Default::default() },
        );
    });
    let injected_ledger = measure(events, reps, || {
        let mut ledger = OutcomeLedger::default();
        run(
            &w.program,
            &w.trace,
            &w.cfg,
            RunOptions {
                compiled: Some(&w.compiled),
                outcomes: Some(&mut ledger),
                ..Default::default()
            },
        );
    });
    let hw_prefetcher = measure(events, reps, || {
        let mut hw = NextLine;
        run(
            &w.program,
            &w.trace,
            &w.cfg,
            RunOptions { hw_prefetcher: Some(&mut hw), ..Default::default() },
        );
    });
    // The streaming row replays the serialized recording — program decode +
    // chunked event decode + simulation — so it prices the full
    // bounded-memory path, not just the engine loop. Peak RSS is reset
    // right before the reps so the reading covers only this window (it is
    // still process-wide: the materialized workload above stays resident).
    let recording = recording_to_bytes(&w.program, &w.trace);
    rss::reset_peak_rss();
    let stream_replay = measure(events, reps, || {
        let (program, mut stream) =
            open_recording_stream(recording.as_slice()).expect("recording round-trips");
        run_streaming(
            &program,
            &mut stream,
            &w.cfg,
            RunOptions { compiled: Some(&w.compiled), ..Default::default() },
        )
        .expect("in-memory stream cannot fail");
    });
    let stream_rss = rss::peak_rss_bytes();

    BenchRun {
        app: w.program.name().to_string(),
        events,
        reps,
        quick,
        rows: vec![
            BenchRow::new("baseline", baseline),
            BenchRow::new("injected", injected),
            BenchRow::new("injected_replay", injected_replay),
            BenchRow::new("injected_ledger", injected_ledger),
            BenchRow::new("hw_prefetcher", hw_prefetcher),
            BenchRow {
                name: "stream_replay",
                blocks_per_sec: stream_replay,
                peak_rss_bytes: stream_rss,
            },
        ],
    }
}

/// Builds the JSON history entry for one run. `threads` is recorded so a
/// sharded number can never masquerade as a single-thread one; the rows here
/// all replay sequentially, so it is always 1.
pub fn history_entry(run: &BenchRun, label: &str) -> Json {
    let mut rows = Vec::with_capacity(run.rows.len());
    let mut rss_rows = Vec::new();
    for r in &run.rows {
        rows.push((r.name.to_string(), Json::Num(r.blocks_per_sec.round())));
        if let Some(rss) = r.peak_rss_bytes {
            rss_rows.push((r.name.to_string(), Json::Num(rss as f64)));
        }
    }
    let mut fields = vec![
        ("label".to_string(), Json::Str(label.to_string())),
        ("quick".to_string(), Json::Bool(run.quick)),
        ("events".to_string(), Json::Num(run.events as f64)),
        ("reps".to_string(), Json::Num(run.reps as f64)),
        ("threads".to_string(), Json::Num(1.0)),
        ("blocks_per_sec".to_string(), Json::Obj(rows)),
    ];
    if !rss_rows.is_empty() {
        fields.push(("peak_rss_bytes".to_string(), Json::Obj(rss_rows)));
    }
    Json::Obj(fields)
}

/// Loads and parses a benchmark history file.
pub fn load_history(path: &Path) -> Result<Json, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    Json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
}

/// Appends `entry` to the `history` array in `path`, creating the document
/// (and the array) if absent. Existing entries are preserved verbatim —
/// this is the "append, don't overwrite" half of the history schema.
pub fn append_history(path: &Path, entry: Json) -> Result<(), String> {
    let mut doc = if path.exists() {
        load_history(path)?
    } else {
        Json::Obj(vec![
            ("bench".to_string(), Json::Str("engine".to_string())),
            ("app".to_string(), Json::Str("cassandra".to_string())),
            ("history".to_string(), Json::Arr(Vec::new())),
        ])
    };
    if doc.get("history").is_none() {
        doc.set("history", Json::Arr(Vec::new()));
    }
    match doc.get_mut("history") {
        Some(Json::Arr(items)) => items.push(entry),
        _ => return Err(format!("{}: `history` is not an array", path.display())),
    }
    std::fs::write(path, doc.to_pretty())
        .map_err(|e| format!("cannot write {}: {e}", path.display()))
}

/// The most recent history entry measured at the given sizing (entries
/// without a `quick` field are treated as full-scale, which is what the
/// migrated pre-history entries were).
pub fn latest_entry(doc: &Json, quick: bool) -> Option<&Json> {
    doc.get("history")?
        .as_arr()?
        .iter()
        .rev()
        .find(|e| e.get("quick").and_then(Json::as_bool).unwrap_or(false) == quick)
}

/// The committed blocks/sec for `row` in a history entry.
pub fn entry_row(entry: &Json, row: &str) -> Option<f64> {
    entry.get("blocks_per_sec")?.get(row)?.as_f64()
}

/// The committed peak RSS (bytes) for `row` in a history entry, for the
/// rows that record one.
pub fn entry_rss(entry: &Json, row: &str) -> Option<u64> {
    Some(entry.get("peak_rss_bytes")?.get(row)?.as_f64()? as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_run(quick: bool, bps: f64) -> BenchRun {
        BenchRun {
            app: "cassandra".to_string(),
            events: 1000,
            reps: 2,
            quick,
            rows: vec![
                BenchRow::new("baseline", bps * 4.0),
                BenchRow::new("injected", bps),
                BenchRow {
                    name: "stream_replay",
                    blocks_per_sec: bps * 0.9,
                    peak_rss_bytes: Some(48 * 1024 * 1024),
                },
            ],
        }
    }

    #[test]
    fn history_appends_and_latest_entry_filters_by_sizing() {
        let dir = std::env::temp_dir().join("ispy_enginebench_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("hist.json");
        let _ = std::fs::remove_file(&path);

        append_history(&path, history_entry(&fake_run(false, 100.0), "first")).unwrap();
        append_history(&path, history_entry(&fake_run(true, 50.0), "first_quick")).unwrap();
        append_history(&path, history_entry(&fake_run(false, 200.0), "second")).unwrap();

        let doc = load_history(&path).unwrap();
        let history = doc.get("history").and_then(Json::as_arr).unwrap();
        assert_eq!(history.len(), 3, "append must preserve prior entries");

        let full = latest_entry(&doc, false).unwrap();
        assert_eq!(full.get("label").and_then(Json::as_str), Some("second"));
        assert_eq!(entry_row(full, "injected"), Some(200.0));
        let quick = latest_entry(&doc, true).unwrap();
        assert_eq!(quick.get("label").and_then(Json::as_str), Some("first_quick"));
        assert_eq!(entry_row(quick, "injected"), Some(50.0));

        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn peak_rss_round_trips_through_the_history_schema() {
        let entry = history_entry(&fake_run(true, 100.0), "rss");
        assert_eq!(entry_rss(&entry, "stream_replay"), Some(48 * 1024 * 1024));
        assert_eq!(entry_rss(&entry, "baseline"), None, "rows without RSS stay absent");
        // Legacy entries predate the field entirely.
        let legacy = Json::parse(r#"{"blocks_per_sec": {"injected": 1.0}}"#).unwrap();
        assert_eq!(entry_rss(&legacy, "stream_replay"), None);
    }

    #[test]
    fn legacy_entries_without_quick_flag_count_as_full_scale() {
        let doc = Json::parse(
            r#"{"history": [{"label": "pre_rework", "blocks_per_sec": {"injected": 625490}}]}"#,
        )
        .unwrap();
        let full = latest_entry(&doc, false).unwrap();
        assert_eq!(entry_row(full, "injected"), Some(625_490.0));
        assert!(latest_entry(&doc, true).is_none());
    }
}
