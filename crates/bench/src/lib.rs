//! Shared setup for the Criterion benchmarks.
//!
//! The real measurement targets live in `benches/`: `components` covers the
//! substrate (caches, Bloom filter, walker, simulator, scanner, planner),
//! and `figures` has one benchmark per paper table/figure, running the
//! corresponding harness driver at a reduced scale.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ispy_profile::{profile, Profile, SampleRate};
use ispy_sim::SimConfig;
use ispy_trace::{apps, Program, Trace};

/// A small prepared workload shared by benchmarks.
pub struct BenchWorkload {
    /// The program.
    pub program: Program,
    /// A recorded trace.
    pub trace: Trace,
    /// Its profile.
    pub profile: Profile,
}

/// Prepares a reduced-scale cassandra workload (deterministic).
pub fn workload(events: usize) -> BenchWorkload {
    let model = apps::cassandra().scaled_down(8);
    let program = model.generate();
    let trace = program.record_trace(model.default_input(), events);
    let profile = profile(&program, &trace, &SimConfig::default(), SampleRate::EXACT);
    BenchWorkload { program, trace, profile }
}
