//! One benchmark per paper table/figure: each measures regenerating the
//! corresponding experiment end-to-end at a reduced scale.
//!
//! These double as regression guards on the analysis pipeline's cost — the
//! paper notes context discovery's search-space blow-up beyond 4
//! predecessors (§VI-B), which `figures/fig17` makes directly measurable.

use criterion::{criterion_group, criterion_main, Criterion};
use ispy_harness::{figures, Scale, Session};
use std::time::Duration;

fn bench_figures(c: &mut Criterion) {
    // One shared session over a representative 3-app subset (wordpress is
    // required by fig03/fig16/fig21; verilator exercises coalescing; drupal
    // is a second HHVM-class app): preparation is paid once; each benchmark
    // then measures its figure driver, which includes that figure's
    // planning/simulation work (comparison runs are cached after first use,
    // exactly like the `repro` binary).
    let session = Session::with_apps(
        Scale::test(),
        vec![
            ispy_trace::apps::drupal(),
            ispy_trace::apps::verilator(),
            ispy_trace::apps::wordpress(),
        ],
    );
    // Warm the shared comparison cache so per-figure numbers are comparable.
    for i in 0..session.apps().len() {
        let _ = session.comparison(i);
    }
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(3));
    g.warm_up_time(Duration::from_millis(500));
    for spec in figures::all() {
        g.bench_function(spec.id, |b| b.iter(|| (spec.run)(&session)));
    }
    g.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
