//! Engine-throughput benchmark: blocks/sec through `ispy_sim::run` for the
//! four configurations every figure driver pays for.
//!
//! Unlike the criterion-shim benches, this one owns its measurement loop so
//! it can report blocks/sec directly and export machine-readable JSON — the
//! committed `BENCH_engine.json` seeds the engine perf trajectory and CI
//! runs it in `--quick` mode as a release-build throughput smoke test.
//!
//! Usage (arguments also accepted via `cargo bench -- <args>`):
//!
//! ```text
//! cargo bench -p ispy-bench --bench engine            # full measurement
//! cargo bench -p ispy-bench --bench engine -- --quick # CI smoke sizing
//! cargo bench -p ispy-bench --bench engine -- --json out.json
//! ```

use ispy_harness::workload::miss_derived_plan;
use ispy_isa::InjectionMap;
use ispy_sim::{run, HwPrefetcher, OutcomeLedger, RunOptions, SimConfig};
use ispy_trace::{apps, Line, Program, Trace};
use std::time::Instant;

/// Next-line-on-miss hardware prefetcher, the simplest hook that keeps the
/// in-flight bookkeeping busy.
struct NextLine;

impl HwPrefetcher for NextLine {
    fn on_fetch(&mut self, line: Line, was_miss: bool, out: &mut Vec<Line>) {
        if was_miss {
            out.push(line.offset(1));
        }
    }
}

struct Workload {
    program: Program,
    trace: Trace,
    cfg: SimConfig,
    plan: InjectionMap,
    events: usize,
}

fn prepare(quick: bool) -> Workload {
    let (shrink, events) = if quick { (20, 50_000) } else { (10, 200_000) };
    let model = apps::cassandra().scaled_down(shrink);
    let program = model.generate();
    let trace = program.record_trace(model.default_input(), events);
    let cfg = SimConfig::default();
    let plan = miss_derived_plan(&program, &trace, &cfg);
    Workload { program, trace, cfg, plan, events }
}

/// Times `f` over `reps` repetitions (after one warmup run) and returns the
/// best observed blocks/sec — the least-noise estimate of engine throughput.
fn measure(events: usize, reps: usize, mut f: impl FnMut()) -> f64 {
    f(); // warmup
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    events as f64 / best
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick")
        || std::env::var("ISPY_BENCH_QUICK").is_ok_and(|v| v == "1");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .or_else(|| std::env::var("ISPY_BENCH_JSON").ok());

    let reps = if quick { 2 } else { 5 };
    let w = prepare(quick);
    let events = w.events;

    let baseline = measure(events, reps, || {
        run(&w.program, &w.trace, &w.cfg, RunOptions::default());
    });
    let injected = measure(events, reps, || {
        run(
            &w.program,
            &w.trace,
            &w.cfg,
            RunOptions { injections: Some(&w.plan), ..Default::default() },
        );
    });
    let injected_ledger = measure(events, reps, || {
        let mut ledger = OutcomeLedger::default();
        run(
            &w.program,
            &w.trace,
            &w.cfg,
            RunOptions {
                injections: Some(&w.plan),
                outcomes: Some(&mut ledger),
                ..Default::default()
            },
        );
    });
    let hw_prefetcher = measure(events, reps, || {
        let mut hw = NextLine;
        run(
            &w.program,
            &w.trace,
            &w.cfg,
            RunOptions { hw_prefetcher: Some(&mut hw), ..Default::default() },
        );
    });

    let rows: [(&str, f64); 4] = [
        ("baseline", baseline),
        ("injected", injected),
        ("injected_ledger", injected_ledger),
        ("hw_prefetcher", hw_prefetcher),
    ];
    for (name, bps) in rows {
        println!("bench engine/{name:<30} {bps:>14.0} blocks/s");
    }

    if let Some(path) = json_path {
        let mut out = String::from("{\n");
        out.push_str("  \"bench\": \"engine\",\n");
        out.push_str(&format!("  \"app\": \"{}\",\n", w.program.name()));
        out.push_str(&format!("  \"events\": {events},\n"));
        out.push_str(&format!("  \"reps\": {reps},\n"));
        out.push_str(&format!("  \"quick\": {quick},\n"));
        out.push_str("  \"blocks_per_sec\": {\n");
        for (i, (name, bps)) in rows.iter().enumerate() {
            let comma = if i + 1 < rows.len() { "," } else { "" };
            out.push_str(&format!("    \"{name}\": {bps:.0}{comma}\n"));
        }
        out.push_str("  }\n}\n");
        std::fs::write(&path, out).expect("write bench json");
        eprintln!("wrote {path}");
    }
}
