//! Engine-throughput benchmark: blocks/sec through `ispy_sim::run` for the
//! six configurations every figure driver pays for (including the
//! bounded-memory `stream_replay` path, which also reports peak RSS). The
//! measurement loop
//! itself lives in [`ispy_harness::enginebench`] so `repro bench` and this
//! target report the same numbers; this binary adds the CLI and the JSON
//! history writer.
//!
//! Usage (arguments also accepted via `cargo bench -- <args>`):
//!
//! ```text
//! cargo bench -p ispy-bench --bench engine             # full measurement
//! cargo bench -p ispy-bench --bench engine -- --quick  # CI smoke sizing
//! cargo bench -p ispy-bench --bench engine -- \
//!     --json BENCH_engine.json --label post_fastpath   # append to history
//! ```
//!
//! `--json` *appends* a labelled entry to the file's ordered `history`
//! array (creating the file if needed); committed measurement sections are
//! never overwritten, so the perf trajectory across reworks stays legible.

use ispy_harness::enginebench::{append_history, history_entry, run_engine_bench};
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick")
        || std::env::var("ISPY_BENCH_QUICK").is_ok_and(|v| v == "1");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .or_else(|| std::env::var("ISPY_BENCH_JSON").ok());
    let label = args
        .iter()
        .position(|a| a == "--label")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| if quick { "run_quick".to_string() } else { "run".to_string() });

    let bench = run_engine_bench(quick);
    for row in &bench.rows {
        match row.peak_rss_bytes {
            Some(_) => println!(
                "bench engine/{:<30} {:>14.0} blocks/s   peak RSS {}",
                row.name,
                row.blocks_per_sec,
                ispy_harness::rss::format_bytes(row.peak_rss_bytes)
            ),
            None => println!("bench engine/{:<30} {:>14.0} blocks/s", row.name, row.blocks_per_sec),
        }
    }

    if let Some(path) = json_path {
        let path = PathBuf::from(path);
        if let Err(e) = append_history(&path, history_entry(&bench, &label)) {
            eprintln!("{e}");
            std::process::exit(1);
        }
        eprintln!("appended `{label}` to {}", path.display());
    }
}
