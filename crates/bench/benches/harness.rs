//! Benchmarks for the parallel experiment harness itself: what the rayon-style
//! fan-out and the sweep-aware planner baseline buy on the heaviest figure.
//!
//! `fig17_sweep/*` runs the full Fig. 17 context-size sweep (6 config points ×
//! apps) at test scale, serial vs pooled — the end-to-end number `repro fig17`
//! pays. `planner/*` isolates the baseline's win: a fresh `plan()` rescans the
//! trace per config point, `plan_with_baseline()` reuses the session's cached
//! candidate windows and joint counts.

use criterion::{criterion_group, criterion_main, Criterion};
use ispy_core::{IspyConfig, Planner, PlannerBaseline};
use ispy_harness::{figures, Scale, Session};
use std::time::Duration;

fn session() -> Session {
    Session::with_apps(
        Scale::test(),
        vec![ispy_trace::apps::cassandra(), ispy_trace::apps::wordpress()],
    )
}

fn bench_fig17_sweep(c: &mut Criterion) {
    let s = session();
    for i in 0..s.apps().len() {
        let _ = s.comparison(i);
    }
    let mut g = c.benchmark_group("fig17_sweep");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(5));
    g.warm_up_time(Duration::from_millis(500));
    for threads in [1usize, 0] {
        let label = if threads == 1 { "serial" } else { "pool" };
        g.bench_function(label, |b| {
            ispy_parallel::set_threads(threads);
            b.iter(|| figures::fig17::run(&s));
            ispy_parallel::set_threads(0);
        });
    }
    g.finish();
}

fn bench_planner_baseline(c: &mut Criterion) {
    let s = session();
    let ctx = &s.apps()[0];
    // A warmed baseline, as a mid-sweep `repro` run would hold.
    let warmed = PlannerBaseline::new();
    Planner::new(&ctx.program, &ctx.trace, &ctx.profile, IspyConfig::default())
        .plan_with_baseline(&warmed);
    let mut g = c.benchmark_group("planner");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(5));
    g.warm_up_time(Duration::from_millis(500));
    g.bench_function("fresh_plan", |b| {
        b.iter(|| {
            Planner::new(&ctx.program, &ctx.trace, &ctx.profile, IspyConfig::default()).plan()
        })
    });
    g.bench_function("warmed_baseline_plan", |b| {
        b.iter(|| {
            Planner::new(&ctx.program, &ctx.trace, &ctx.profile, IspyConfig::default())
                .plan_with_baseline(&warmed)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_fig17_sweep, bench_planner_baseline);
criterion_main!(benches);
