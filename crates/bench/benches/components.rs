//! Substrate micro/meso benchmarks: how fast is each building block.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use ispy_bench::workload;
use ispy_core::{IspyConfig, Planner};
use ispy_isa::hash::{fnv1_addr, murmur3_addr};
use ispy_isa::HashConfig;
use ispy_profile::{profile, scan_joint, JointQuery, SampleRate};
use ispy_sim::{
    run, Cache, CacheParams, CountingBloom, InsertPriority, Lbr, RunOptions, SimConfig,
};
use ispy_trace::{apps, Addr, BlockId, Line, Walker};
use std::hint::black_box;

fn bench_hashes(c: &mut Criterion) {
    let mut g = c.benchmark_group("hash");
    g.bench_function("fnv1_addr", |b| b.iter(|| fnv1_addr(black_box(0x40_1234))));
    g.bench_function("murmur3_addr", |b| b.iter(|| murmur3_addr(black_box(0x40_1234))));
    let cfg = HashConfig::default();
    g.bench_function("block_signature", |b| {
        b.iter(|| cfg.block_signature(black_box(Addr::new(0x40_1234))))
    });
    g.finish();
}

fn bench_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache");
    g.throughput(Throughput::Elements(1));
    g.bench_function("l1i_access_hit", |b| {
        let mut cache = Cache::new(CacheParams::new(32 * 1024, 8));
        cache.fill(Line::new(42), InsertPriority::Mru, false);
        b.iter(|| cache.access(black_box(Line::new(42))))
    });
    g.bench_function("l1i_fill_evict", |b| {
        let mut cache = Cache::new(CacheParams::new(32 * 1024, 8));
        let mut n = 0u64;
        b.iter(|| {
            n += 64;
            cache.fill(Line::new(n), InsertPriority::Half, true)
        })
    });
    g.finish();
}

fn bench_lbr_bloom(c: &mut Criterion) {
    let mut g = c.benchmark_group("lbr");
    g.throughput(Throughput::Elements(1));
    g.bench_function("push_with_bloom", |b| {
        let mut lbr = Lbr::new(32, HashConfig::default());
        let mut n = 0u64;
        b.iter(|| {
            n += 64;
            lbr.push(Addr::new(0x400000 + (n % 8192)))
        })
    });
    g.bench_function("bloom_runtime_hash", |b| {
        let mut bloom = CountingBloom::new(HashConfig::default());
        for i in 0..32 {
            bloom.insert(Addr::new(0x400000 + i * 64));
        }
        b.iter(|| black_box(bloom.runtime_hash()))
    });
    g.finish();
}

fn bench_walker(c: &mut Criterion) {
    let model = apps::cassandra().scaled_down(8);
    let program = model.generate();
    let mut g = c.benchmark_group("trace");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("walker_10k_blocks", |b| {
        b.iter_batched(
            || Walker::new(&program, model.default_input()),
            |walker| walker.take(10_000).count(),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_simulator(c: &mut Criterion) {
    let w = workload(50_000);
    let mut g = c.benchmark_group("sim");
    g.sample_size(20);
    g.measurement_time(std::time::Duration::from_secs(5));
    g.throughput(Throughput::Elements(w.trace.len() as u64));
    g.bench_function("replay_50k_blocks", |b| {
        b.iter(|| run(&w.program, &w.trace, &SimConfig::default(), RunOptions::default()))
    });
    g.finish();
}

fn bench_profiler(c: &mut Criterion) {
    let w = workload(50_000);
    let mut g = c.benchmark_group("profile");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(5));
    g.bench_function("profile_50k_blocks", |b| {
        b.iter(|| profile(&w.program, &w.trace, &SimConfig::default(), SampleRate::EXACT))
    });
    g.finish();
}

fn bench_scanner(c: &mut Criterion) {
    let w = workload(50_000);
    // A realistic query batch over the hottest sites.
    let queries: Vec<JointQuery> = w
        .profile
        .misses
        .lines_by_count()
        .into_iter()
        .take(64)
        .filter_map(|(_, stats)| {
            let site = stats.dominant_block()?;
            let candidates: Vec<BlockId> =
                stats.ranked_predictors(&[]).into_iter().take(6).map(|(b, _)| b).collect();
            Some(JointQuery {
                site,
                target_positions: stats.positions.clone(),
                candidates,
                horizon_blocks: 64,
            })
        })
        .collect();
    let mut g = c.benchmark_group("scan");
    g.sample_size(20);
    g.measurement_time(std::time::Duration::from_secs(5));
    g.bench_function("joint_scan_64_queries", |b| b.iter(|| scan_joint(&w.trace, 32, &queries)));
    g.finish();
}

fn bench_planner(c: &mut Criterion) {
    let w = workload(50_000);
    let mut g = c.benchmark_group("plan");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(5));
    g.bench_function("ispy_full_plan", |b| {
        b.iter(|| Planner::new(&w.program, &w.trace, &w.profile, IspyConfig::default()).plan())
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_hashes,
    bench_cache,
    bench_lbr_bloom,
    bench_walker,
    bench_simulator,
    bench_profiler,
    bench_scanner,
    bench_planner
);
criterion_main!(benches);
