//! Characterize the nine data-center applications like §II of the paper:
//! front-end boundness, miss volume, and what a miss context looks like.
//!
//! ```sh
//! cargo run --release --example datacenter_profile
//! ```

use ispy_core::{IspyConfig, Planner};
use ispy_profile::{profile, SampleRate};
use ispy_sim::{run, RunOptions, SimConfig};
use ispy_trace::apps;

fn main() {
    println!(
        "{:<16} {:>9} {:>10} {:>8} {:>10} {:>9}",
        "app", "text KiB", "fe-bound", "MPKI", "miss lines", "hot lines"
    );
    let sim_cfg = SimConfig::default();
    for model in apps::all() {
        let model = model.scaled_down(4);
        let program = model.generate();
        let trace = program.record_trace(model.default_input(), 250_000);
        let stats = trace.stats(&program);
        let base = run(&program, &trace, &sim_cfg, RunOptions::default());
        let prof = profile(&program, &trace, &sim_cfg, SampleRate::EXACT);
        println!(
            "{:<16} {:>9} {:>9.1}% {:>8.1} {:>10} {:>9}",
            program.name(),
            program.text_bytes() / 1024,
            100.0 * base.frontend_bound(),
            base.mpki(),
            prof.misses.num_lines(),
            stats.distinct_lines,
        );
    }

    // Deep-dive: what does a discovered miss context look like on wordpress?
    let model = apps::wordpress().scaled_down(4);
    let program = model.generate();
    let trace = program.record_trace(model.default_input(), 250_000);
    let prof = profile(&program, &trace, &sim_cfg, SampleRate::EXACT);
    let plan = Planner::new(&program, &trace, &prof, IspyConfig::default()).plan();
    println!("\nwordpress plan: {:?}", plan.injections.op_histogram());
    if let Some((site, blocks)) = plan.context_details.first() {
        println!(
            "example context: a prefetch at {site} fires only when blocks {:?} are in the LBR",
            blocks.iter().map(|b| b.0).collect::<Vec<_>>()
        );
    }
    if let Some((line, stats)) = prof.misses.lines_by_count().first() {
        println!(
            "hottest missing line: {line} missed {} times, most often from {}",
            stats.count,
            stats.dominant_block().map(|b| b.to_string()).unwrap_or_default()
        );
    }
}
