//! Input generalization (paper Fig. 16): profile under one request mix,
//! then serve different mixes with the same injected binary.
//!
//! ```sh
//! cargo run --release --example input_drift
//! ```

use ispy_baselines::asmdb::{AsmDbConfig, AsmDbPlanner};
use ispy_core::{IspyConfig, Planner};
use ispy_profile::{profile, SampleRate};
use ispy_sim::{run, RunOptions, SimConfig};
use ispy_trace::apps;

fn main() {
    let model = apps::wordpress().scaled_down(4);
    let program = model.generate();
    let events = 250_000;
    let sim_cfg = SimConfig::default();

    // Profile and plan on the default (variant 0) input only.
    let profiled_trace = program.record_trace(model.default_input(), events);
    let prof = profile(&program, &profiled_trace, &sim_cfg, SampleRate::EXACT);
    let ispy = Planner::new(&program, &profiled_trace, &prof, IspyConfig::default()).plan();
    let asmdb = AsmDbPlanner::new(&program, &prof, AsmDbConfig::default()).plan();

    println!("wordpress, plans built from the profiled input only\n");
    println!(
        "{:<10} {:>12} {:>12} {:>12} {:>14}",
        "input", "ideal", "asmdb", "i-spy", "i-spy %ideal"
    );
    for k in 0..5 {
        let input = model.input_variant(k);
        let trace = program.record_trace(input, events);
        let base = run(&program, &trace, &sim_cfg, RunOptions::default());
        let ideal = run(&program, &trace, &SimConfig::ideal(), RunOptions::default());
        let ra = run(
            &program,
            &trace,
            &sim_cfg,
            RunOptions { injections: Some(&asmdb.injections), ..Default::default() },
        );
        let ri = run(
            &program,
            &trace,
            &sim_cfg,
            RunOptions { injections: Some(&ispy.injections), ..Default::default() },
        );
        println!(
            "{:<10} {:>11.3}x {:>11.3}x {:>11.3}x {:>13.1}%",
            if k == 0 { "profiled".to_string() } else { format!("drift-{k}") },
            ideal.speedup_over(&base),
            ra.speedup_over(&base),
            ri.speedup_over(&base),
            100.0 * ri.fraction_of_ideal(&base, &ideal),
        );
    }
    println!("\nConditional prefetching keys on run-time context, so the plan");
    println!("degrades gracefully when the request mix drifts (paper §VI-A).");
}
