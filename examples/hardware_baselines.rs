//! Place I-SPY against the hardware-prefetcher design space the paper
//! surveys in §VIII: next-line, next-4-line, adaptive stream, and an
//! RDIP-style signature prefetcher.
//!
//! ```sh
//! cargo run --release --example hardware_baselines
//! ```

use ispy_baselines::{NextNLine, RdipLite, StreamPrefetcher};
use ispy_core::{IspyConfig, Planner};
use ispy_profile::{profile, SampleRate};
use ispy_sim::{run, HwPrefetcher, RunOptions, SimConfig};
use ispy_trace::apps;

fn main() {
    println!(
        "{:<16} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "app", "ideal", "next-1", "next-4", "stream", "rdip", "i-spy"
    );
    let sim_cfg = SimConfig::default();
    for model in [apps::wordpress(), apps::verilator(), apps::cassandra()] {
        let model = model.scaled_down(6);
        let program = model.generate();
        let trace = program.record_trace(model.default_input(), 200_000);
        let base = run(&program, &trace, &sim_cfg, RunOptions::default());
        let ideal = run(&program, &trace, &SimConfig::ideal(), RunOptions::default());

        let hw_speedup = |pf: &mut dyn HwPrefetcher| {
            let r = run(
                &program,
                &trace,
                &sim_cfg,
                RunOptions { hw_prefetcher: Some(pf), ..Default::default() },
            );
            r.speedup_over(&base)
        };
        let n1 = hw_speedup(&mut NextNLine::new(1));
        let n4 = hw_speedup(&mut NextNLine::new(4));
        let st = hw_speedup(&mut StreamPrefetcher::new(1, 8));
        let rd = hw_speedup(&mut RdipLite::new(3, 1 << 15));

        let prof = profile(&program, &trace, &sim_cfg, SampleRate::EXACT);
        let plan = Planner::new(&program, &trace, &prof, IspyConfig::default()).plan();
        let ri = run(
            &program,
            &trace,
            &sim_cfg,
            RunOptions { injections: Some(&plan.injections), ..Default::default() },
        );
        println!(
            "{:<16} {:>9.3}x {:>9.3}x {:>9.3}x {:>9.3}x {:>9.3}x {:>9.3}x",
            program.name(),
            ideal.speedup_over(&base),
            n1,
            n4,
            st,
            rd,
            ri.speedup_over(&base),
        );
    }
    println!();
    println!("Next-line prefetchers help sequential code (verilator) but cannot follow");
    println!("the branchy control flow of server apps; history-based hardware (RDIP)");
    println!("needs on-chip state. I-SPY reaches further with 96 bits of state (§VIII).");
}
