//! Explore prefetch coalescing (paper §III-B / Fig. 19) on verilator, the
//! app whose machine-generated straight-line code makes coalescing shine.
//!
//! ```sh
//! cargo run --release --example coalescing_explorer
//! ```

use ispy_core::{IspyConfig, Planner};
use ispy_profile::{profile, SampleRate};
use ispy_sim::{run, RunOptions, SimConfig};
use ispy_trace::apps;

fn main() {
    let model = apps::verilator().scaled_down(4);
    let program = model.generate();
    let trace = program.record_trace(model.default_input(), 250_000);
    let sim_cfg = SimConfig::default();
    let prof = profile(&program, &trace, &sim_cfg, SampleRate::EXACT);
    let base = run(&program, &trace, &sim_cfg, RunOptions::default());

    println!(
        "verilator: {} misses over {} lines\n",
        prof.misses.total_misses(),
        prof.misses.num_lines()
    );
    println!(
        "{:>9} {:>8} {:>12} {:>12} {:>10}",
        "mask bits", "ops", "bytes added", "speedup", "<4 lines"
    );
    for bits in [1u8, 2, 4, 8, 16, 32, 64] {
        let cfg = IspyConfig::coalescing_only().with_coalesce_bits(bits);
        let plan = Planner::new(&program, &trace, &prof, cfg).plan();
        let r = run(
            &program,
            &trace,
            &sim_cfg,
            RunOptions { injections: Some(&plan.injections), ..Default::default() },
        );
        println!(
            "{:>9} {:>8} {:>12} {:>11.3}x {:>9.1}%",
            bits,
            plan.stats.ops_total(),
            plan.stats.injected_bytes,
            r.speedup_over(&base),
            100.0 * plan.stats.coalesced_fraction_below(4),
        );
    }
    println!("\nWider masks fold more prefetches into single instructions (fewer ops,");
    println!("fewer bytes) — the paper settles on 8 bits as the hardware-complexity");
    println!("sweet spot, and finds most coalesced prefetches bring in <4 lines (Fig. 20).");
}
