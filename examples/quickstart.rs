//! Quickstart: profile an application, build an I-SPY plan, and measure the
//! speedup — the whole pipeline in ~40 lines.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ispy_core::{IspyConfig, Planner};
use ispy_profile::{profile, SampleRate};
use ispy_sim::{run, RunOptions, SimConfig};
use ispy_trace::apps;

fn main() {
    // 1. A synthetic data-center application (its "binary") and a recorded
    //    steady-state execution trace.
    let model = apps::wordpress().scaled_down(4);
    let program = model.generate();
    let trace = program.record_trace(model.default_input(), 300_000);
    println!(
        "app: {} — {} KiB text, {} basic blocks, {} block events",
        program.name(),
        program.text_bytes() / 1024,
        program.num_blocks(),
        trace.len()
    );

    // 2. Online profiling: LBR + PEBS-style miss sampling over a replay.
    let sim_cfg = SimConfig::default();
    let prof = profile(&program, &trace, &sim_cfg, SampleRate::EXACT);
    println!(
        "profile: {} I-cache misses over {} distinct lines",
        prof.misses.total_misses(),
        prof.misses.num_lines()
    );

    // 3. Offline analysis: injection sites, contexts, coalescing.
    let plan = Planner::new(&program, &trace, &prof, IspyConfig::default()).plan();
    println!(
        "plan: {} ops at {} sites ({} conditional contexts), +{:.1}% static footprint",
        plan.stats.ops_total(),
        plan.stats.sites,
        plan.stats.contexts_adopted,
        100.0 * plan.stats.static_increase
    );

    // 4. Deploy: replay the same trace with the injected prefetches.
    let baseline = run(&program, &trace, &sim_cfg, RunOptions::default());
    let ideal = run(&program, &trace, &SimConfig::ideal(), RunOptions::default());
    let ispy = run(
        &program,
        &trace,
        &sim_cfg,
        RunOptions { injections: Some(&plan.injections), ..Default::default() },
    );
    println!(
        "speedup: {:.3}x (ideal cache: {:.3}x) — {:.1}% of ideal",
        ispy.speedup_over(&baseline),
        ideal.speedup_over(&baseline),
        100.0 * ispy.fraction_of_ideal(&baseline, &ideal)
    );
    println!(
        "misses: {} -> {} ({:.1}% MPKI reduction), prefetch accuracy {:.1}%",
        baseline.i_misses,
        ispy.i_misses,
        100.0 * ispy.mpki_reduction_vs(&baseline),
        100.0 * ispy.accuracy()
    );
}
